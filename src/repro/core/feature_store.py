"""The feature store facade.

Ties together the registry, the dual datastore and the materializer into the
workflow the paper describes (section 2.2):

1. **author & publish** — :meth:`FeatureStore.publish_view` registers a
   versioned definition and provisions its offline table and online
   namespace;
2. **materialize** — :meth:`FeatureStore.materialize` evaluates the view's
   transformations as of a timestamp and writes the results to *both*
   stores;
3. **train** — :meth:`FeatureStore.build_training_set` performs the
   point-in-time join of label events against materialized history;
4. **serve** — :meth:`FeatureStore.get_online_features` reads the latest
   vectors with freshness enforcement.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field

import numpy as np

from repro.clock import Clock, SimClock
from repro.core.feature_view import FeatureSetSpec, FeatureView
from repro.core.registry import EntityDef, FeatureRegistry
from repro.errors import ServingError, ValidationError
from repro.storage.models import ModelStore
from repro.storage.offline import OfflineStore, OfflineTable, TableSchema
from repro.storage.online import FreshnessPolicy, OnlineStore

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MaterializationResult:
    """Summary of one materialization run."""

    view: str
    version: int
    as_of: float
    entities_written: int


@dataclass(frozen=True)
class TrainingSet:
    """A point-in-time-correct training dataset with provenance.

    ``features`` is an ``(n, d)`` float matrix (NaN where a feature had no
    value at the label's timestamp); ``feature_names`` are the pinned
    ``view@version:feature`` names; ``provenance`` records the feature set
    used so the model store can pin it.
    """

    features: np.ndarray
    labels: np.ndarray
    timestamps: np.ndarray
    entity_ids: np.ndarray
    feature_names: tuple[str, ...]
    feature_set: str

    def __len__(self) -> int:
        return len(self.labels)

    def dropna(self) -> "TrainingSet":
        """Rows where every feature is present."""
        keep = ~np.isnan(self.features).any(axis=1)
        return TrainingSet(
            features=self.features[keep],
            labels=self.labels[keep],
            timestamps=self.timestamps[keep],
            entity_ids=self.entity_ids[keep],
            feature_names=self.feature_names,
            feature_set=self.feature_set,
        )


@dataclass
class _ViewRuntime:
    """Book-keeping the store keeps per published view version."""

    view: FeatureView
    last_materialized: float | None = None
    runs: list[MaterializationResult] = field(default_factory=list)


class FeatureStore:
    """Centralized feature management (the paper's Part-1 system)."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or SimClock()
        self.registry = FeatureRegistry()
        self.offline = OfflineStore()
        self.online = OnlineStore(clock=self.clock)
        self.models = ModelStore(clock=self.clock)
        self._runtimes: dict[tuple[str, int], _ViewRuntime] = {}
        self._compiler_totals: dict[str, int] = {}

    # -- sources ------------------------------------------------------------

    def create_source_table(self, name: str, schema: TableSchema) -> OfflineTable:
        """Provision a raw event table features will be derived from."""
        return self.offline.create_table(name, schema)

    def ingest(self, table: str, rows: list[dict[str, object]]) -> int:
        """Append raw events to a source table."""
        return self.offline.table(table).append(rows)

    def attach_stream(
        self,
        name: str,
        features: list,
        ttl: float | None = None,
        emit_interval: float = 60.0,
    ):
        """Provision a streaming ingestion path bound to this store.

        Returns a :class:`repro.streaming.StreamProcessor` whose aggregates
        are served from this store's online store (namespace
        ``<name>__stream``) and logged to its offline store (table
        ``__stream__<name>``). The log table is a normal offline table, so
        a batch :class:`FeatureView` can be published over it to fold
        streaming features into point-in-time training sets — the paper's
        "persisted to the online store and logged to the offline store"
        (section 2.2.1), composed with the batch path.
        """
        from repro.streaming import StreamProcessor

        return StreamProcessor(
            features=features,
            online=self.online,
            offline=self.offline,
            namespace=f"{name}__stream",
            log_table=f"__stream__{name}",
            emit_interval=emit_interval,
            ttl=ttl,
        )

    def get_stream_features(
        self,
        name: str,
        entity_ids: list[int],
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> list[dict[str, object] | None]:
        """Online lookup of a stream attached via :meth:`attach_stream`."""
        return self.online.read_many(f"{name}__stream", entity_ids, policy)

    # -- authoring & publishing ----------------------------------------------

    def register_entity(self, name: str, description: str = "") -> EntityDef:
        entity = EntityDef(name=name, description=description)
        self.registry.register_entity(entity)
        return entity

    def publish_view(self, view: FeatureView) -> FeatureView:
        """Publish a feature view and provision its storage.

        Validates that the source table exists and declares every input
        column the view's transformations read. Plan-backed views are
        bound to the live source schema here, so the registry's
        plan-vs-declared dtype validation runs against what this store
        will actually compile.
        """
        source = self.offline.table(view.source_table)
        known = set(source.schema.columns) | {"entity_id", "timestamp"}
        missing = view.input_columns() - known
        if missing:
            raise ValidationError(
                f"view {view.name!r} reads columns {sorted(missing)} that source "
                f"table {view.source_table!r} does not declare"
            )
        if view.plan is not None and not getattr(view.plan, "is_bound", False):
            view = dataclasses.replace(view, plan=view.plan.bind(source.schema))
        stamped = self.registry.publish_view(view)
        feature_columns = {f.name: f.dtype for f in stamped.features}
        self.offline.create_table(
            stamped.materialized_table, TableSchema(columns=feature_columns)
        )
        self.online.create_namespace(stamped.online_namespace, ttl=stamped.ttl)
        self._runtimes[(stamped.name, stamped.version)] = _ViewRuntime(view=stamped)
        logger.info(
            "published view %s v%d (%d features, cadence %.0fs)",
            stamped.name, stamped.version, len(stamped.features), stamped.cadence,
        )
        return stamped

    def publish_plan(
        self,
        name: str,
        plan,
        entity: str,
        cadence: float = 3600.0,
        ttl: float | None = None,
        owner: str = "",
        description: str = "",
        tags: tuple[str, ...] = (),
    ) -> FeatureView:
        """Publish a declarative plan (``repro.compiler``) as a feature view.

        The plan is lowered to a view against the live source schema
        (feature dtypes inferred by the compiler) and then goes through the
        normal :meth:`publish_view` validation and provisioning.
        """
        source = self.offline.table(plan.source_table)
        view = plan.to_view(
            name,
            entity=entity,
            schema=source.schema,
            cadence=cadence,
            ttl=ttl,
            owner=owner,
            description=description,
            tags=tags,
        )
        return self.publish_view(view)

    # -- materialization ------------------------------------------------------

    def materialize(
        self,
        view_name: str,
        as_of: float | None = None,
        version: int | None = None,
        entity_ids: list[int] | None = None,
    ) -> MaterializationResult:
        """Evaluate a view's features as of a timestamp, into both stores.

        Only entities with at least one source event at or before ``as_of``
        receive a row. Feature rows are timestamped ``as_of``, which is what
        point-in-time training joins key on.
        """
        view = self.registry.view(view_name, version)
        as_of = self.clock.now() if as_of is None else float(as_of)
        source = self.offline.table(view.source_table)

        if view.plan is not None:
            # Compiled route: the plan picks its physical strategy
            # (asof-index / shared-scan / row-engine) and reports what the
            # optimizer saved.
            compiled = view.plan.compile(source)
            rows = compiled.evaluate(as_of, entity_ids=entity_ids)
            self._note_compiler_stats({"views_compiled": 1, **compiled.stats})
            return self._commit_materialization(view, as_of, rows)

        max_window = max(
            (t.window for f in view.features for t in [f.transform]
             if hasattr(t, "window")),
            default=None,
        )

        candidates = (
            list(entity_ids) if entity_ids is not None else source.entity_ids()
        )
        # Batched as-of resolution: one index probe pass for *all* candidate
        # entities instead of N separate latest_before/events_between calls.
        latest_idx = source.latest_before_index_batch(
            np.asarray(candidates, dtype=np.int64),
            np.full(len(candidates), as_of, dtype=np.float64),
        )
        if max_window is not None:
            windows = source.events_between_batch(
                candidates, as_of - max_window, as_of
            )
        out_rows: list[dict[str, object]] = []
        for i, entity_id in enumerate(candidates):
            row_index = int(latest_idx[i])
            if row_index < 0:
                continue
            if max_window is not None:
                # An empty window means the latest event predates it;
                # ColumnRef/RowTransform still need that latest event, and
                # WindowAggregate correctly sees nothing in range.
                events = windows[i] or [source.row_at(row_index)]
            else:
                events = [source.row_at(row_index)]

            values: dict[str, object] = {}
            for feature in view.features:
                values[feature.name] = feature.transform.evaluate(events, as_of)

            out_rows.append({"entity_id": entity_id, "timestamp": as_of, **values})

        return self._commit_materialization(view, as_of, out_rows)

    def _commit_materialization(
        self,
        view: FeatureView,
        as_of: float,
        rows: list[dict[str, object]],
    ) -> MaterializationResult:
        """Write finished feature rows to both stores and record the run.

        Shared tail of every materialization path (legacy transform loop,
        compiled single plan, fused plan group): one bulk append to the
        materialized table, per-entity online upserts, runtime bookkeeping.
        """
        runtime = self._runtimes[(view.name, view.version)]
        target = self.offline.table(view.materialized_table)
        if rows:
            target.append(rows)
        feature_names = view.feature_names
        for row in rows:
            values = {name: row[name] for name in feature_names}
            self.online.write(
                view.online_namespace, row["entity_id"], values, event_time=as_of
            )
        result = MaterializationResult(
            view=view.name,
            version=view.version,
            as_of=as_of,
            entities_written=len(rows),
        )
        runtime.last_materialized = as_of
        runtime.runs.append(result)
        logger.info(
            "materialized %s v%d as_of=%.0f: %d entities",
            view.name, view.version, as_of, len(rows),
        )
        return result

    def materialize_many(
        self,
        view_names: list[str],
        as_of: float | None = None,
    ) -> list[MaterializationResult]:
        """Materialize several views at once, fusing shared scans.

        Plan-backed views reading the same source table become one fusion
        group: a single physical scan feeds every member's operators
        (``scans_saved`` grows by N-1 per group). Everything else — legacy
        views and singleton plans — goes through :meth:`materialize`
        individually. Results come back in input order and are identical
        to per-view materialization.
        """
        as_of = self.clock.now() if as_of is None else float(as_of)
        views = [self.registry.view(name) for name in view_names]
        results: dict[int, MaterializationResult] = {}

        groups: dict[str, list[int]] = {}
        for position, view in enumerate(views):
            if view.plan is not None:
                groups.setdefault(view.source_table, []).append(position)

        fused: set[int] = set()
        for table_name, members in groups.items():
            if len(members) < 2:
                continue
            source = self.offline.table(table_name)
            plans = [views[position].plan for position in members]
            rows_per_plan, stats = plans[0].materialize_group(
                plans, source, as_of
            )
            self._note_compiler_stats(stats)
            for position, rows in zip(members, rows_per_plan):
                results[position] = self._commit_materialization(
                    views[position], as_of, rows
                )
            fused.update(members)

        for position, view in enumerate(views):
            if position not in fused:
                results[position] = self.materialize(
                    view.name, as_of=as_of, version=view.version
                )
        return [results[position] for position in range(len(views))]

    def _note_compiler_stats(self, delta: dict[str, int]) -> None:
        for key, value in delta.items():
            self._compiler_totals[key] = (
                self._compiler_totals.get(key, 0) + int(value)
            )

    @property
    def compiler_stats(self) -> dict[str, int]:
        """Cumulative pipeline-compiler accounting (empty before any
        compiled execution): views compiled, fusion groups, scans saved,
        rows scanned vs. pruned, columns decoded vs. pruned."""
        return dict(self._compiler_totals)

    def backfill(
        self,
        view_name: str,
        start: float,
        end: float,
        version: int | None = None,
        step: float | None = None,
    ) -> list[MaterializationResult]:
        """Materialize a historical range at the view's cadence.

        The orchestration path for "when the underlying data changes"
        (section 2.2.1): after late-arriving data or a view republish, the
        offline history must be regenerated so point-in-time training joins
        see the corrected values. Runs at ``start, start+step, ...`` up to
        and including ``end`` (``step`` defaults to the view's cadence).

        Note the online store is only effectively updated by the *last* run
        (its last-event-time-wins upsert ignores the older snapshots).
        """
        if end < start:
            raise ValidationError(f"backfill range reversed ({start=}, {end=})")
        view = self.registry.view(view_name, version)
        step = view.cadence if step is None else float(step)
        if step <= 0:
            raise ValidationError(f"step must be positive ({step=})")
        results = []
        as_of = start
        while as_of <= end:
            results.append(
                self.materialize(view_name, as_of=as_of, version=view.version)
            )
            as_of += step
        return results

    def materialization_runs(
        self, view_name: str, version: int | None = None
    ) -> list[MaterializationResult]:
        view = self.registry.view(view_name, version)
        return list(self._runtimes[(view.name, view.version)].runs)

    def views_due(self, now: float | None = None) -> list[FeatureView]:
        """Latest view versions whose cadence says they should re-materialize.

        The FS "orchestrates the updates to the features based on the
        user-defined cadence" (section 2.2.1); the pipeline scheduler calls
        this every tick.
        """
        now = self.clock.now() if now is None else now
        due = []
        for name in self.registry.view_names():
            view = self.registry.view(name)
            runtime = self._runtimes[(view.name, view.version)]
            last = runtime.last_materialized
            if last is None or now - last >= view.cadence:
                due.append(view)
        return due

    # -- serving ---------------------------------------------------------------

    def get_online_features(
        self,
        view_name: str,
        entity_ids: list[int],
        version: int | None = None,
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> list[dict[str, object] | None]:
        """Low-latency lookup of the latest feature vectors."""
        view = self.registry.view(view_name, version)
        return self.online.read_many(view.online_namespace, entity_ids, policy)

    # -- training sets -----------------------------------------------------------

    def create_feature_set(self, spec: FeatureSetSpec) -> FeatureSetSpec:
        return self.registry.create_feature_set(spec)

    def get_historical_features(
        self,
        entity_events: list[tuple[int, float]],
        feature_set: str,
        engine: str = "columnar",
    ) -> list[dict[str, object]]:
        """Point-in-time join: feature values as each event's timestamp saw them.

        For every ``(entity_id, timestamp)`` pair, each selected feature is
        read from the *latest materialized row at or before* the timestamp —
        never from the future.

        ``engine`` selects the execution path: ``"columnar"`` (default)
        resolves all probes against a view's table with one batched as-of
        kernel call and gathers feature values per column; ``"row"`` is the
        original per-pair loop, kept for parity testing and benchmarking.
        Both return identical results.
        """
        resolved = self.registry.resolve_feature_set(feature_set)
        tables = {
            view.name: self.offline.table(view.materialized_table)
            for view, __ in resolved
        }
        if engine == "row":
            out: list[dict[str, object]] = []
            for entity_id, timestamp in entity_events:
                row: dict[str, object] = {"entity_id": entity_id, "timestamp": timestamp}
                for view, feature_name in resolved:
                    hit = tables[view.name].latest_before(entity_id, timestamp)
                    key = f"{view.name}@{view.version}:{feature_name}"
                    row[key] = None if hit is None else hit.get(feature_name)
                out.append(row)
            return out
        if engine != "columnar":
            raise ValidationError(f"unknown engine {engine!r}; use 'columnar' or 'row'")

        n = len(entity_events)
        entity_arr = np.fromiter((e for e, __ in entity_events), np.int64, count=n)
        ts_arr = np.fromiter((t for __, t in entity_events), np.float64, count=n)
        # One batched as-of kernel per *view* (all its features share the hit
        # row), then a value gather per feature column.
        hit_indices: dict[tuple[str, int], np.ndarray] = {}
        columns: list[tuple[str, list[object]]] = []
        for view, feature_name in resolved:
            view_key = (view.name, view.version)
            indices = hit_indices.get(view_key)
            if indices is None:
                indices = tables[view.name].latest_before_index_batch(
                    entity_arr, ts_arr
                )
                hit_indices[view_key] = indices
            qualified = f"{view.name}@{view.version}:{feature_name}"
            columns.append(
                (qualified, tables[view.name].gather_values(feature_name, indices))
            )
        out = []
        for i, (entity_id, timestamp) in enumerate(entity_events):
            row = {"entity_id": entity_id, "timestamp": timestamp}
            for qualified, values in columns:
                row[qualified] = values[i]
            out.append(row)
        return out

    def build_training_set(
        self,
        labels: list[tuple[int, float, float]],
        feature_set: str,
        engine: str = "columnar",
    ) -> TrainingSet:
        """Join labels ``(entity_id, timestamp, label)`` against history.

        Non-numeric features are rejected — training matrices are float.

        With the default ``engine="columnar"`` the matrix is assembled
        column-by-column: one batched as-of kernel call per view resolves
        every label's hit row, and each feature column is a direct numpy
        gather (NaN where a feature had no value at the label's timestamp).
        ``engine="row"`` is the original per-cell loop, kept for parity
        tests and the A4 benchmark; both produce NaN-identical matrices.
        """
        if engine not in ("columnar", "row"):
            raise ValidationError(f"unknown engine {engine!r}; use 'columnar' or 'row'")
        resolved = self.registry.resolve_feature_set(feature_set)
        for view, feature_name in resolved:
            dtype = view.feature(feature_name).dtype
            if dtype == "string":
                raise ValidationError(
                    f"feature {view.name}:{feature_name} is a string; training "
                    "sets require numeric features"
                )
        names = tuple(
            f"{view.name}@{view.version}:{feature_name}"
            for view, feature_name in resolved
        )
        n = len(labels)
        if engine == "row":
            joined = self.get_historical_features(
                [(e, t) for e, t, __ in labels], feature_set, engine="row"
            )
            matrix = np.full((n, len(names)), np.nan)
            for i, row in enumerate(joined):
                for j, name in enumerate(names):
                    value = row[name]
                    if value is not None:
                        matrix[i, j] = float(value)  # type: ignore[arg-type]
        else:
            entity_arr = np.fromiter((e for e, __, __ in labels), np.int64, count=n)
            ts_arr = np.fromiter((t for __, t, __ in labels), np.float64, count=n)
            matrix = np.full((n, len(names)), np.nan)
            hit_indices: dict[tuple[str, int], np.ndarray] = {}
            for j, (view, feature_name) in enumerate(resolved):
                table = self.offline.table(view.materialized_table)
                view_key = (view.name, view.version)
                indices = hit_indices.get(view_key)
                if indices is None:
                    indices = table.latest_before_index_batch(entity_arr, ts_arr)
                    hit_indices[view_key] = indices
                matrix[:, j] = table.gather_float(feature_name, indices)
        return TrainingSet(
            features=matrix,
            labels=np.array([label for __, __, label in labels]),
            timestamps=np.array([t for __, t, __ in labels]),
            entity_ids=np.array([e for e, __, __ in labels], dtype=np.int64),
            feature_names=names,
            feature_set=feature_set,
        )

    # -- embedding-enhanced training sets ------------------------------------

    @staticmethod
    def compose_with_embedding(
        training: TrainingSet,
        embedding_store,
        name: str,
        pinned_version: int,
        serve_version: int | None = None,
    ) -> tuple[np.ndarray, tuple[str, ...]]:
        """Append an entity embedding's rows to a training matrix.

        The paper's "embedding enhanced feature store" (section 4) serves
        tabular features and embeddings side by side; this composes both
        into one ``(n, d_tabular + d_embedding)`` matrix, pulling vectors
        through the embedding store's compatibility-checked path. Returns
        the matrix and the extended feature-name tuple (embedding columns
        are named ``<name>@<version>[j]``).
        """
        vectors = embedding_store.vectors_for_model(
            name, pinned_version, training.entity_ids, serve_version=serve_version
        )
        matrix = np.hstack([training.features, vectors])
        version = serve_version if serve_version is not None else pinned_version
        embedding_names = tuple(
            f"{name}@{version}[{j}]" for j in range(vectors.shape[1])
        )
        return matrix, training.feature_names + embedding_names

    # -- models ------------------------------------------------------------------

    def register_model(
        self,
        name: str,
        model: object,
        feature_set: str,
        metrics: dict[str, float] | None = None,
        hyperparameters: dict[str, object] | None = None,
        embedding_versions: dict[str, int] | None = None,
    ):
        """Store a trained model and wire its lineage to the feature set."""
        self.registry.feature_set(feature_set)  # must exist
        record = self.models.register(
            name,
            model,
            metrics=metrics,
            hyperparameters=hyperparameters,
            feature_set=feature_set,
            embedding_versions=embedding_versions,
        )
        self.registry.link_model(name, feature_set)
        for embedding_name in (embedding_versions or {}):
            self.registry.link_embedding(embedding_name, name)
        return record

    def serve_features_for_model(
        self,
        model_name: str,
        entity_ids: list[int],
        policy: FreshnessPolicy = FreshnessPolicy.SERVE_ANYWAY,
    ) -> np.ndarray:
        """Assemble the online feature matrix a deployed model expects.

        Reads each pinned feature of the model's feature set from the online
        store under the given freshness ``policy``; missing or stale-dropped
        values become NaN (callers impute or reject).
        """
        record = self.models.get(model_name)
        if record.feature_set is None:
            raise ServingError(f"model {model_name!r} has no pinned feature set")
        resolved = self.registry.resolve_feature_set(record.feature_set)
        for view, feature_name in resolved:
            if view.feature(feature_name).dtype == "string":
                raise ServingError(
                    f"feature {view.name}:{feature_name} is a string; model "
                    "feature matrices are numeric"
                )
        matrix = np.full((len(entity_ids), len(resolved)), np.nan)
        for j, (view, feature_name) in enumerate(resolved):
            vectors = self.online.read_many(view.online_namespace, entity_ids, policy)
            for i, values in enumerate(vectors):
                if values is not None and values.get(feature_name) is not None:
                    matrix[i, j] = float(values[feature_name])  # type: ignore[arg-type]
        return matrix
