"""Feature-hashed shared embedding tables: unbounded vocab, fixed memory.

The *Unified Embedding* production recipe (PAPERS.md) for web-scale
sparse features: don't give every token its own row — hash the token
(or its character n-grams) into a fixed-size table shared across all
features, look up ``n_probes`` rows per token, and average them. Memory
is set once at construction (``n_rows * dim`` floats, period) no matter
how many distinct tokens ever arrive; collisions are the price, and
multi-probe averaging is the mitigation — two tokens must collide on
*every* probe (probability ~``(1/n_rows)^n_probes``) before their
representations become identical.

Hashing is salted :mod:`hashlib` blake2b, never Python's ``hash()`` —
deterministic across processes and runs, so the same token always maps
to the same rows and a materialized table can be rebuilt bit-identically.

The table plugs into the rest of the repo at two points:

* :meth:`accumulate` folds externally computed vectors into the shared
  rows (``np.add.at`` scatter-accumulate, duplicate-probe safe) — the
  "training" path;
* :meth:`materialize` emits ``(stable int64 ids, averaged vectors)`` for
  a token set — exactly the parallel arrays the ingestion bus and the
  vector serving plane consume, so hashed features flow through the
  existing bus → vecserve path unchanged.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ValidationError


def _blake_int(payload: str) -> int:
    """Deterministic 63-bit integer digest of a string."""
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") & 0x7FFF_FFFF_FFFF_FFFF


def char_ngrams(text: str, n: int = 3) -> list[str]:
    """Boundary-padded character n-grams (fastText-style ``<text>``)."""
    if n <= 0:
        raise ValidationError(f"n must be positive ({n=})")
    padded = f"<{text}>"
    if len(padded) <= n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


class SharedEmbeddingTable:
    """A fixed-memory embedding table addressed by hashed tokens.

    ``n_rows × dim`` float64 rows, seeded-Gaussian initialized so
    untrained lookups already behave as random features (the classic
    hashing trick). Each token reads/writes ``n_probes`` rows chosen by
    salted hashes; reads average the probes, writes scatter into them.
    """

    def __init__(
        self,
        n_rows: int,
        dim: int,
        n_probes: int = 2,
        seed: int = 0,
        init_scale: float = 0.05,
    ) -> None:
        if n_rows <= 0:
            raise ValidationError(f"n_rows must be positive ({n_rows=})")
        if dim <= 0:
            raise ValidationError(f"dim must be positive ({dim=})")
        if not 1 <= n_probes <= n_rows:
            raise ValidationError(
                f"n_probes must be in [1, {n_rows}] ({n_probes=})"
            )
        self.n_rows = n_rows
        self.dim = dim
        self.n_probes = n_probes
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.table = (
            rng.standard_normal((n_rows, dim)) * init_scale
            if init_scale > 0
            else np.zeros((n_rows, dim))
        )
        self.tokens_seen = 0  # accumulate() calls' token count (collisions and all)

    # -- addressing -----------------------------------------------------------

    def token_id(self, token: str) -> int:
        """Stable int64 identity for ``token`` (bus keys, vecserve ids)."""
        return _blake_int(f"id\x1f{self.seed}\x1f{token}")

    def rows_for(self, token: str) -> np.ndarray:
        """The ``n_probes`` table rows this token hashes to."""
        return np.asarray(
            [
                _blake_int(f"probe{probe}\x1f{self.seed}\x1f{token}")
                % self.n_rows
                for probe in range(self.n_probes)
            ],
            dtype=np.int64,
        )

    # -- read path ------------------------------------------------------------

    def vector(self, token: str) -> np.ndarray:
        """Multi-probe average representation of one token."""
        return self.table[self.rows_for(token)].mean(axis=0)

    def vectors(self, tokens: list[str]) -> np.ndarray:
        """Stacked multi-probe averages for a token list, ``(n, dim)``."""
        if not tokens:
            return np.empty((0, self.dim))
        rows = np.stack([self.rows_for(token) for token in tokens])  # (n, p)
        return self.table[rows].mean(axis=1)

    def ngram_vector(self, text: str, n: int = 3) -> np.ndarray:
        """Bag-of-n-grams embedding: mean over hashed char n-grams —
        the "hash n-gram → row" recipe for out-of-vocabulary text."""
        return self.vectors(char_ngrams(text, n)).mean(axis=0)

    # -- write path -----------------------------------------------------------

    def accumulate(
        self, tokens: list[str], vectors: np.ndarray, weight: float = 1.0
    ) -> None:
        """Fold external vectors into the tokens' shared rows.

        Each token's vector is scattered (``weight``-scaled, split across
        its probes) into all its probe rows with ``np.add.at``, which
        accumulates correctly even when probes collide within the batch —
        the property a plain fancy-index ``+=`` silently lacks.
        """
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2 or vectors.shape != (len(tokens), self.dim):
            raise ValidationError(
                f"accumulate expects ({len(tokens)}, {self.dim}) vectors, "
                f"got {vectors.shape}"
            )
        if not tokens:
            return
        rows = np.stack([self.rows_for(token) for token in tokens])  # (n, p)
        contribution = np.repeat(
            vectors * (weight / self.n_probes), self.n_probes, axis=0
        )
        np.add.at(self.table, rows.reshape(-1), contribution)
        self.tokens_seen += len(tokens)

    # -- materialization ------------------------------------------------------

    def materialize(self, tokens: list[str]) -> tuple[np.ndarray, np.ndarray]:
        """``(stable ids, averaged vectors)`` for a token set — parallel
        arrays ready for ``VectorService.serve_matrix`` / bus upserts.

        Ids are :meth:`token_id` digests (collision-free for practical
        vocabularies at 63 bits), so re-materializing after more
        :meth:`accumulate` rounds upserts the *same* serving-plane ids
        with fresher vectors.
        """
        ids = np.asarray(
            [self.token_id(token) for token in tokens], dtype=np.int64
        )
        if len(set(ids.tolist())) != len(ids):
            raise ValidationError("materialize tokens must be distinct")
        return ids, self.vectors(tokens)

    # -- accounting -----------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Resident bytes of the shared table (fixed at construction)."""
        return int(self.table.nbytes)
