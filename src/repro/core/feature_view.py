"""Feature views: published, versioned feature definitions.

Paper section 2.2.1: "feature stores allow for feature authoring and
publishing. Users provide simple definitional metadata, e.g., the feature
update cadence and a definition SQL query, and upload the definition to the
FS. When the underlying data changes, the FS orchestrates the updates to the
features based on the user-defined cadence."

A :class:`FeatureView` bundles: the source table, the entity join key, a set
of named :class:`Feature` definitions (each a transformation), the update
cadence, and a freshness TTL for online serving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transforms import Transformation
from repro.errors import ValidationError

_FEATURE_TYPES = {"float", "int", "string"}


@dataclass(frozen=True)
class Feature:
    """One named feature inside a view."""

    name: str
    dtype: str
    transform: Transformation
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValidationError(f"feature name must be an identifier ({self.name!r})")
        if self.dtype not in _FEATURE_TYPES:
            raise ValidationError(
                f"feature {self.name!r}: dtype {self.dtype!r} not in {sorted(_FEATURE_TYPES)}"
            )


@dataclass(frozen=True)
class FeatureView:
    """A published group of features over one source table and entity.

    Attributes:
        name: view name, unique within the registry.
        source_table: offline table the definition reads.
        entity: the entity name this view is keyed by.
        features: the feature definitions.
        cadence: seconds between scheduled materialization runs.
        ttl: online freshness contract in seconds (None = never stale).
        owner / description / tags: the "definitional metadata" the paper
            says users publish alongside the query.
        version: assigned by the registry at publish time.
        plan: optional declarative plan (``repro.compiler``) this view was
            lowered from. Core never imports the compiler; it only calls
            duck-typed methods (``bind`` / ``validate_view`` /
            ``required_columns`` / ``compile`` / ``materialize_group``) on
            the object, keeping the layering one-directional.
    """

    name: str
    source_table: str
    entity: str
    features: tuple[Feature, ...]
    cadence: float = 3600.0
    ttl: float | None = None
    owner: str = ""
    description: str = ""
    tags: tuple[str, ...] = ()
    version: int = 1
    plan: object | None = None

    def __post_init__(self) -> None:
        if not self.features:
            raise ValidationError(f"view {self.name!r} must define at least one feature")
        if self.cadence <= 0:
            raise ValidationError(f"cadence must be positive ({self.cadence=})")
        if self.ttl is not None and self.ttl <= 0:
            raise ValidationError(f"ttl must be positive or None ({self.ttl=})")
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate feature names in view {self.name!r}: {names}")

    @property
    def feature_names(self) -> list[str]:
        return [f.name for f in self.features]

    @property
    def materialized_table(self) -> str:
        """Name of the offline table holding this view's materialized rows."""
        return f"__materialized__{self.name}__v{self.version}"

    @property
    def online_namespace(self) -> str:
        """Name of the online-store namespace serving this view."""
        return f"{self.name}__v{self.version}"

    def input_columns(self) -> set[str]:
        """Union of source columns read by all features (for lineage)."""
        out: set[str] = set()
        for feature in self.features:
            out.update(feature.transform.input_columns)
        if self.plan is not None:
            out.update(
                column
                for column in self.plan.required_columns()
                if column not in ("entity_id", "timestamp")
            )
        return out

    def feature(self, name: str) -> Feature:
        for feature in self.features:
            if feature.name == name:
                return feature
        raise KeyError(f"view {self.name!r} has no feature {name!r}")

    def with_version(self, version: int) -> "FeatureView":
        """Copy of this view stamped with a registry-assigned version."""
        return FeatureView(
            name=self.name,
            source_table=self.source_table,
            entity=self.entity,
            features=self.features,
            cadence=self.cadence,
            ttl=self.ttl,
            owner=self.owner,
            description=self.description,
            tags=self.tags,
            version=version,
            plan=self.plan,
        )


@dataclass(frozen=True)
class FeatureSetSpec:
    """A named selection of features across views — the unit models train on.

    ``features`` lists fully qualified names ``"view_name:feature_name"``.
    The registry resolves and version-pins them at creation time, which is
    what makes trained models reproducible (paper section 2.2.2).
    """

    name: str
    features: tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.features:
            raise ValidationError(f"feature set {self.name!r} selects no features")
        for qualified in self.features:
            if ":" not in qualified:
                raise ValidationError(
                    f"feature set {self.name!r}: {qualified!r} must be 'view:feature'"
                )

    def by_view(self) -> dict[str, list[str]]:
        """Group selected feature names by their view."""
        grouped: dict[str, list[str]] = {}
        for qualified in self.features:
            view, feature = qualified.split(":", 1)
            grouped.setdefault(view, []).append(feature)
        return grouped
