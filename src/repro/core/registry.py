"""Feature registry: the centralized repository of reusable definitions.

Paper section 2.2: "Feature stores (FSs) arose to address these challenges
by providing a centralized repository of reusable features across the ML
pipeline". The registry owns:

* entity definitions (join keys),
* published feature views, **versioned** — republishing a changed view bumps
  the version rather than mutating history, which is what keeps old training
  sets reproducible,
* feature sets (version-pinned selections used to train models),
* a lineage DAG (networkx) from source tables through views and feature sets
  to models and embeddings, so impact analysis ("which models consume this
  feature?") is a graph traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.feature_view import FeatureSetSpec, FeatureView
from repro.errors import AlreadyRegisteredError, NotRegisteredError, ValidationError


@dataclass(frozen=True)
class EntityDef:
    """A business entity the store keys features by (e.g. driver, rider)."""

    name: str
    description: str = ""


class FeatureRegistry:
    """Versioned registry of entities, views and feature sets, with lineage."""

    def __init__(self) -> None:
        self._entities: dict[str, EntityDef] = {}
        self._views: dict[str, list[FeatureView]] = {}
        self._feature_sets: dict[str, FeatureSetSpec] = {}
        self._lineage = nx.DiGraph()

    # -- entities ---------------------------------------------------------

    def register_entity(self, entity: EntityDef) -> None:
        if entity.name in self._entities:
            raise AlreadyRegisteredError(f"entity {entity.name!r} already registered")
        self._entities[entity.name] = entity
        self._lineage.add_node(("entity", entity.name))

    def entity(self, name: str) -> EntityDef:
        if name not in self._entities:
            raise NotRegisteredError(
                f"no entity {name!r}; have {sorted(self._entities)}"
            )
        return self._entities[name]

    def entity_names(self) -> list[str]:
        return sorted(self._entities)

    # -- feature views ----------------------------------------------------

    def publish_view(self, view: FeatureView) -> FeatureView:
        """Publish (or republish) a view; returns the version-stamped copy.

        Republishing a view whose name already exists creates a new version;
        prior versions stay readable so existing feature sets and models
        keep their pinned definitions.

        Plan-backed views are schema-checked here: the declared feature
        dtypes must agree with what the compiled plan will produce
        (:class:`~repro.errors.ValidationError` otherwise — *before* a
        version is allocated, so a bad publish leaves no trace).
        """
        if view.entity not in self._entities:
            raise NotRegisteredError(
                f"view {view.name!r} references unknown entity {view.entity!r}"
            )
        versions = self._views.setdefault(view.name, [])
        stamped = view.with_version(len(versions) + 1)
        if stamped.plan is not None and getattr(stamped.plan, "is_bound", False):
            stamped.plan.validate_view(stamped)
        versions.append(stamped)

        view_node = ("view", f"{stamped.name}:v{stamped.version}")
        table_node = ("table", stamped.source_table)
        self._lineage.add_node(view_node)
        self._lineage.add_node(table_node)
        self._lineage.add_edge(table_node, view_node)
        for column in sorted(stamped.input_columns()):
            column_node = ("column", f"{stamped.source_table}.{column}")
            self._lineage.add_edge(table_node, column_node)
            self._lineage.add_edge(column_node, view_node)
        for feature in stamped.features:
            feature_node = ("feature", f"{stamped.name}:v{stamped.version}:{feature.name}")
            self._lineage.add_edge(view_node, feature_node)
        return stamped

    def view(self, name: str, version: int | None = None) -> FeatureView:
        versions = self._views.get(name)
        if not versions:
            raise NotRegisteredError(f"no view {name!r}; have {sorted(self._views)}")
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise NotRegisteredError(
                f"view {name!r} has versions 1..{len(versions)}, not {version}"
            )
        return versions[version - 1]

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def view_versions(self, name: str) -> list[FeatureView]:
        if name not in self._views:
            raise NotRegisteredError(f"no view {name!r}")
        return list(self._views[name])

    # -- feature sets -----------------------------------------------------

    def create_feature_set(self, spec: FeatureSetSpec) -> FeatureSetSpec:
        """Register a feature set after resolving every selected feature.

        Resolution pins the *current latest* version of each referenced view
        by rewriting names to ``view@version:feature``.
        """
        if spec.name in self._feature_sets:
            raise AlreadyRegisteredError(f"feature set {spec.name!r} already exists")
        pinned: list[str] = []
        for qualified in spec.features:
            view_name, feature_name = qualified.split(":", 1)
            if "@" in view_name:
                view_name, version_text = view_name.split("@", 1)
                view = self.view(view_name, int(version_text))
            else:
                view = self.view(view_name)
            view.feature(feature_name)  # raises KeyError if absent
            pinned.append(f"{view.name}@{view.version}:{feature_name}")

        resolved = FeatureSetSpec(
            name=spec.name, features=tuple(pinned), description=spec.description
        )
        self._feature_sets[spec.name] = resolved

        set_node = ("feature_set", spec.name)
        self._lineage.add_node(set_node)
        for qualified in pinned:
            view_at, feature_name = qualified.split(":", 1)
            view_name, version_text = view_at.split("@", 1)
            feature_node = ("feature", f"{view_name}:v{version_text}:{feature_name}")
            self._lineage.add_edge(feature_node, set_node)
        return resolved

    def feature_set(self, name: str) -> FeatureSetSpec:
        if name not in self._feature_sets:
            raise NotRegisteredError(
                f"no feature set {name!r}; have {sorted(self._feature_sets)}"
            )
        return self._feature_sets[name]

    def feature_set_names(self) -> list[str]:
        return sorted(self._feature_sets)

    def resolve_feature_set(
        self, name: str
    ) -> list[tuple[FeatureView, str]]:
        """Resolve a feature set to ``(view, feature_name)`` pairs, pinned."""
        spec = self.feature_set(name)
        out: list[tuple[FeatureView, str]] = []
        for qualified in spec.features:
            view_at, feature_name = qualified.split(":", 1)
            view_name, version_text = view_at.split("@", 1)
            out.append((self.view(view_name, int(version_text)), feature_name))
        return out

    # -- lineage ----------------------------------------------------------

    def link_model(self, model_name: str, feature_set: str) -> None:
        """Record that a model trains on a feature set."""
        if feature_set not in self._feature_sets:
            raise NotRegisteredError(f"no feature set {feature_set!r}")
        self._lineage.add_edge(("feature_set", feature_set), ("model", model_name))

    def link_embedding(self, embedding_name: str, model_name: str) -> None:
        """Record that a model consumes an embedding."""
        self._lineage.add_edge(("embedding", embedding_name), ("model", model_name))

    @property
    def lineage(self) -> nx.DiGraph:
        """The lineage DAG (read it, don't mutate it)."""
        return self._lineage

    def downstream_models(self, node: tuple[str, str]) -> list[str]:
        """All model names reachable from a lineage node.

        Answers the paper's monitoring question: when this table / view /
        feature / embedding degrades, which deployed models are affected?
        """
        if node not in self._lineage:
            raise NotRegisteredError(f"lineage node {node!r} unknown")
        return sorted(
            name
            for kind, name in nx.descendants(self._lineage, node)
            if kind == "model"
        )

    def upstream_sources(self, model_name: str) -> list[tuple[str, str]]:
        """All lineage ancestors of a model (tables, views, features, sets)."""
        node = ("model", model_name)
        if node not in self._lineage:
            raise NotRegisteredError(f"model {model_name!r} not in lineage")
        return sorted(nx.ancestors(self._lineage, node))

    def validate_acyclic(self) -> None:
        """Lineage must be a DAG; cycles indicate a definition bug."""
        if not nx.is_directed_acyclic_graph(self._lineage):
            cycle = nx.find_cycle(self._lineage)
            raise ValidationError(f"lineage graph has a cycle: {cycle}")
