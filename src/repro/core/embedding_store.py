"""The embedding store: embeddings as first-class feature-store citizens.

This is the system the paper argues for (sections 3-4): "the next evolution
of a feature store is one with native support for embeddings. ... Users need
tools for searching and querying these embeddings as well as support for
versioning, provenance, and downstream quality metrics."

The store provides:

* **versioning** — immutable, monotonically numbered versions per embedding
  name;
* **provenance** — every version records its trainer, config, data snapshot
  and parent version;
* **quality metrics** — on registration, each version is automatically
  compared against its predecessor (neighbourhood Jaccard, aligned
  displacement) and the scores are stored;
* **search** — per-version vector indexes (brute/LSH/IVF/HNSW) built lazily;
* **compatibility enforcement** — serving a version to a model pinned to a
  different version raises :class:`~repro.errors.CompatibilityError` unless
  the pair was explicitly marked compatible (the paper's "dot product ...
  can lose meaning" hazard, experiment E9).
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.clock import Clock, WallClock
from repro.embeddings.base import EmbeddingMatrix
from repro.embeddings.metrics import (
    align_procrustes,
    eigenspace_overlap_score,
    neighborhood_jaccard,
    semantic_displacement,
)
from repro.errors import (
    CompatibilityError,
    NotRegisteredError,
    ValidationError,
)
from repro.index import (
    BruteForceIndex,
    HNSWIndex,
    IVFFlatIndex,
    LSHIndex,
    SearchResult,
    VectorIndex,
)
from repro.runtime.telemetry import MetricsRegistry

logger = logging.getLogger(__name__)

_INDEX_FACTORIES = {
    "brute": BruteForceIndex,
    "lsh": LSHIndex,
    "ivf": IVFFlatIndex,
    "hnsw": HNSWIndex,
}


@dataclass(frozen=True)
class Provenance:
    """How an embedding version was produced."""

    trainer: str
    config: dict[str, object] = field(default_factory=dict)
    data_snapshot: str = ""
    seed: int | None = None
    parent_version: int | None = None


@dataclass(frozen=True)
class EmbeddingVersion:
    """One immutable stored embedding version."""

    name: str
    version: int
    embedding: EmbeddingMatrix
    provenance: Provenance
    created_at: float
    metrics: dict[str, float] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.name}:v{self.version}"


class EmbeddingStore:
    """Versioned, provenance-tracked embedding registry with serving.

    Thread safety: registration, compatibility mutation, lazy index builds
    and the serve-count bookkeeping are guarded by an internal
    :class:`threading.RLock`, so the serving gateway's worker pool can
    call :meth:`search` / :meth:`vectors_for_model` concurrently with
    registrations without corrupting the version lists or building the
    same index twice.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        quality_knn_k: int = 10,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self._clock = clock or WallClock()
        self._versions: dict[str, list[EmbeddingVersion]] = {}
        self._indexes: dict[tuple[str, int, str], VectorIndex] = {}
        self._compatible: set[tuple[str, int, int]] = set()
        self._lock = threading.RLock()
        self._register_listeners: list = []
        self._vector_service = None  # attached repro.vecserve.VectorService
        self.quality_knn_k = quality_knn_k
        self.read_count = 0  # serving-side reads (search + vectors_for_model)
        # Optional telemetry: per-table resident bytes as a live gauge,
        # so a compression win (or an accidental fp64 blow-up) shows in
        # the metrics export, not just in a benchmark artifact.
        self.registry = registry

    # -- serving-plane attachment ---------------------------------------------

    def add_register_listener(self, callback) -> None:
        """Subscribe ``callback(EmbeddingVersion)`` to new registrations.

        Listeners fire *after* the version is committed and outside the
        store lock, so a listener may immediately read the store (e.g.
        the vector service building a served index for the new version).
        """
        with self._lock:
            self._register_listeners.append(callback)

    def remove_register_listener(self, callback) -> None:
        with self._lock:
            if callback in self._register_listeners:
                self._register_listeners.remove(callback)

    def attach_vector_service(self, service) -> None:
        """Route :meth:`search` through a ``repro.vecserve.VectorService``.

        When the attached service serves the resolved ``(name, version)``
        table, searches hit the sharded/monitored ANN plane instead of
        the store's lazily built single index; versions the service does
        not serve fall back to the legacy path. Pass ``None`` to detach.
        """
        with self._lock:
            self._vector_service = service

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        embedding: EmbeddingMatrix,
        provenance: Provenance,
        tags: tuple[str, ...] = (),
    ) -> EmbeddingVersion:
        """Store a new version; computes against-predecessor quality metrics.

        All versions of a name must share the vocabulary size (row count);
        dimension may change across versions (retraining at a new dim), in
        which case cross-version metrics are skipped.
        """
        with self._lock:
            versions = self._versions.setdefault(name, [])
            if versions and versions[-1].embedding.n != embedding.n:
                raise ValidationError(
                    f"embedding {name!r}: row count {embedding.n} != existing "
                    f"{versions[-1].embedding.n}; versions must share a vocabulary"
                )
            metrics: dict[str, float] = {
                "n": float(embedding.n),
                "dim": float(embedding.dim),
                "mean_norm": float(np.linalg.norm(embedding.vectors, axis=1).mean()),
            }
            if versions:
                previous = versions[-1].embedding
                if previous.n > self.quality_knn_k:
                    metrics["knn_jaccard_vs_previous"] = neighborhood_jaccard(
                        previous, embedding, k=self.quality_knn_k
                    )
                if previous.dim == embedding.dim:
                    displacement = semantic_displacement(previous, embedding)
                    metrics["mean_displacement_vs_previous"] = float(
                        displacement.mean()
                    )
                    metrics["max_displacement_vs_previous"] = float(
                        displacement.max()
                    )

            record = EmbeddingVersion(
                name=name,
                version=len(versions) + 1,
                embedding=embedding,
                provenance=provenance,
                created_at=self._clock.now(),
                metrics=metrics,
                tags=tuple(tags),
            )
            versions.append(record)
            listeners = list(self._register_listeners)
            if self.registry is not None:
                self.registry.gauge(
                    "embedding_store_resident_bytes", table=name
                ).set(sum(v.embedding.memory_bytes() for v in versions))
        logger.info(
            "registered embedding %s (trainer=%s, n=%d, dim=%d)",
            record.key, provenance.trainer, embedding.n, embedding.dim,
        )
        for listener in listeners:  # outside the lock: listeners may read back
            listener(record)
        return record

    def get(self, name: str, version: int | None = None) -> EmbeddingVersion:
        with self._lock:
            versions = self._versions.get(name)
            if not versions:
                raise NotRegisteredError(
                    f"no embedding {name!r}; have {sorted(self._versions)}"
                )
            if version is None:
                return versions[-1]
            if not 1 <= version <= len(versions):
                raise NotRegisteredError(
                    f"embedding {name!r} has versions 1..{len(versions)}, "
                    f"not {version}"
                )
            return versions[version - 1]

    def latest_version(self, name: str) -> int:
        return self.get(name).version

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def resident_bytes(self, name: str | None = None) -> int:
        """Raw-matrix bytes held by one embedding name (all its versions)
        or by the whole store — the number the
        ``embedding_store_resident_bytes`` gauge tracks per table."""
        with self._lock:
            names = [name] if name is not None else sorted(self._versions)
            total = 0
            for key in names:
                if key not in self._versions:
                    raise NotRegisteredError(f"no embedding {key!r}")
                total += sum(
                    record.embedding.memory_bytes()
                    for record in self._versions[key]
                )
            return total

    def versions(self, name: str) -> list[EmbeddingVersion]:
        with self._lock:
            if name not in self._versions:
                raise NotRegisteredError(f"no embedding {name!r}")
            return list(self._versions[name])

    def provenance_chain(self, name: str, version: int) -> list[EmbeddingVersion]:
        """Follow parent_version links back to the root, newest first."""
        chain = []
        current: int | None = version
        while current is not None:
            record = self.get(name, current)
            chain.append(record)
            current = record.provenance.parent_version
        return chain

    # -- search ----------------------------------------------------------------

    def search(
        self,
        name: str,
        query: np.ndarray,
        k: int = 10,
        version: int | None = None,
        index_kind: str = "brute",
    ) -> SearchResult:
        """k-NN over a stored version, with a lazily built per-version index.

        When a vector service is attached (see
        :meth:`attach_vector_service`) and serves this version, the query
        routes through its sharded, delta-merged, recall-monitored plane
        — ``index_kind`` then describes only the *fallback* path, the
        service's own backend decides how the routed query is answered.
        """
        if index_kind not in _INDEX_FACTORIES:
            raise ValidationError(
                f"unknown index kind {index_kind!r}; allowed {sorted(_INDEX_FACTORIES)}"
            )
        record = self.get(name, version)
        with self._lock:
            service = self._vector_service
        if service is not None and service.serves(name, record.version):
            with self._lock:
                self.read_count += 1
            return service.search(name, query, k=k, version=record.version)
        cache_key = (name, record.version, index_kind)
        with self._lock:
            self.read_count += 1
            index = self._indexes.get(cache_key)
            if index is None:
                # Built under the lock so concurrent first queries on the
                # same version cannot race to build (and clobber) the index.
                index = _INDEX_FACTORIES[index_kind]()
                index.build(record.embedding.vectors)
                self._indexes[cache_key] = index
        return index.query(np.asarray(query, dtype=float), k)

    def search_filtered(
        self,
        name: str,
        query: np.ndarray,
        allowed_ids: np.ndarray,
        k: int = 10,
        version: int | None = None,
    ) -> SearchResult:
        """k-NN restricted to a caller-supplied id set (exact).

        Filtered search ("nearest products of this category", "entities of
        this type") is the bread-and-butter embedding-store query shape; it
        is answered exactly by scoring only the allowed rows.
        """
        record = self.get(name, version)
        allowed_ids = np.asarray(allowed_ids, dtype=np.int64)
        if len(allowed_ids) == 0:
            raise ValidationError("allowed_ids is empty")
        if allowed_ids.min() < 0 or allowed_ids.max() >= record.embedding.n:
            raise ValidationError("allowed_ids out of range")
        vectors = record.embedding.vectors
        query = np.asarray(query, dtype=float)
        norms = np.linalg.norm(vectors[allowed_ids], axis=1)
        qnorm = np.linalg.norm(query)
        denom = norms * (qnorm if qnorm > 0 else 1.0)
        denom[denom == 0] = 1e-12
        scores = (vectors[allowed_ids] @ query) / denom
        k = min(k, len(allowed_ids))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = np.argsort(-scores[top])
        keep = top[order]
        return SearchResult(ids=allowed_ids[keep], scores=scores[keep])

    def analogy(
        self,
        name: str,
        positive: list[int],
        negative: list[int],
        k: int = 10,
        version: int | None = None,
    ) -> SearchResult:
        """Vector-arithmetic analogy query: sum(positive) - sum(negative).

        The classic "a is to b as c is to ?" pattern
        (``positive=[b, c], negative=[a]``). Input ids are excluded from the
        results, matching word2vec convention.
        """
        record = self.get(name, version)
        if not positive:
            raise ValidationError("analogy needs at least one positive id")
        ids = positive + negative
        if min(ids) < 0 or max(ids) >= record.embedding.n:
            raise ValidationError("analogy ids out of range")
        normalized = record.embedding.normalized()
        query = normalized[positive].sum(axis=0) - (
            normalized[negative].sum(axis=0) if negative else 0.0
        )
        result = self.search(
            name, query, k=k + len(ids), version=version, index_kind="brute"
        )
        exclude = set(ids)
        keep = [i for i, rid in enumerate(result.ids) if int(rid) not in exclude]
        keep = keep[:k]
        return SearchResult(ids=result.ids[keep], scores=result.scores[keep])

    # -- compatibility & serving ---------------------------------------------

    def mark_compatible(self, name: str, model_version: int, serve_version: int) -> None:
        """Declare that vectors of ``serve_version`` may feed models pinned
        to ``model_version`` (e.g. after Procrustes alignment or a verified
        no-op retrain)."""
        with self._lock:
            self.get(name, model_version)
            self.get(name, serve_version)
            self._compatible.add((name, model_version, serve_version))

    def is_compatible(self, name: str, model_version: int, serve_version: int) -> bool:
        if model_version == serve_version:
            return True
        with self._lock:
            return (name, model_version, serve_version) in self._compatible

    def vectors_for_model(
        self,
        name: str,
        pinned_version: int,
        entity_ids: np.ndarray,
        serve_version: int | None = None,
        override: bool = False,
    ) -> np.ndarray:
        """Serve embedding rows to a model pinned to ``pinned_version``.

        By default the *latest* version is served (that is the point of
        centralized embedding management — consumers get updates for free),
        but only if it is compatible with the pinned version; otherwise a
        :class:`CompatibilityError` explains the mismatch. ``override=True``
        bypasses the check, reproducing the paper's failure mode on purpose.
        """
        serve = self.get(name, serve_version)
        with self._lock:
            self.read_count += 1
        if not override and not self.is_compatible(name, pinned_version, serve.version):
            raise CompatibilityError(
                f"model pinned to {name}:v{pinned_version} cannot consume "
                f"{serve.key}: versions not marked compatible. Re-train the "
                "model, align the embedding, or mark_compatible() explicitly."
            )
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        if len(entity_ids) and (
            entity_ids.min() < 0 or entity_ids.max() >= serve.embedding.n
        ):
            raise ValidationError("entity ids out of range for this embedding")
        return serve.embedding.vectors[entity_ids]

    # -- version selection -----------------------------------------------------

    def select_version(
        self,
        name: str,
        evaluate,
        screen_with_eos: bool = False,
        eos_reference_version: int | None = None,
        eos_keep: int = 3,
        max_bytes: int | None = None,
    ) -> tuple[EmbeddingVersion, dict[int, float]]:
        """Pick the best stored version for a downstream task.

        Paper section 3.1.2: users need to "search over possible embeddings
        and select the best ones for their task". ``evaluate`` maps an
        :class:`EmbeddingMatrix` to a score (higher = better) — typically a
        quick downstream fit on held-out data.

        With ``screen_with_eos=True`` the candidates are first ranked by
        eigenspace overlap against a reference version (May et al.'s cheap
        predictor of downstream performance) and only the top ``eos_keep``
        are evaluated for real — the screening pattern that makes selection
        affordable when evaluation is expensive.

        ``max_bytes`` enforces the "memory constraints" half of the paper's
        sentence: versions whose raw matrix exceeds the budget are excluded
        before any screening or evaluation.

        Returns the winning version and the score of every version that was
        actually evaluated.
        """
        versions = self.versions(name)
        candidates = list(versions)
        if max_bytes is not None:
            candidates = [
                record
                for record in candidates
                if record.embedding.memory_bytes() <= max_bytes
            ]
            if not candidates:
                raise ValidationError(
                    f"no version of {name!r} fits within {max_bytes} bytes"
                )
        if screen_with_eos and len(candidates) > eos_keep:
            if eos_keep < 1:
                raise ValidationError(f"eos_keep must be >= 1 ({eos_keep=})")
            reference = self.get(name, eos_reference_version)
            scored = sorted(
                candidates,
                key=lambda record: eigenspace_overlap_score(
                    reference.embedding, record.embedding
                ),
                reverse=True,
            )
            candidates = scored[:eos_keep]

        scores: dict[int, float] = {}
        for record in candidates:
            scores[record.version] = float(evaluate(record.embedding))
        best_version = max(scores, key=scores.get)  # type: ignore[arg-type]
        return self.get(name, best_version), scores

    def align_and_register(
        self,
        name: str,
        source_version: int,
        target_version: int,
        tags: tuple[str, ...] = ("aligned",),
    ) -> EmbeddingVersion:
        """Procrustes-align one version onto another and store the result.

        The registered version is automatically marked compatible with
        ``target_version`` — alignment is exactly what makes an updated
        embedding safe for models trained on the old basis.
        """
        source = self.get(name, source_version)
        target = self.get(name, target_version)
        aligned = align_procrustes(source.embedding, target.embedding)
        record = self.register(
            name,
            aligned,
            Provenance(
                trainer="procrustes_alignment",
                config={"source": source_version, "target": target_version},
                parent_version=source_version,
            ),
            tags=tags,
        )
        self.mark_compatible(name, target_version, record.version)
        return record
