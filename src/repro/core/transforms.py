"""Feature transformations.

A feature view (paper section 2.2.1) is authored as "simple definitional
metadata, e.g., the feature update cadence and a definition SQL query". Our
stand-in for the definition query is a small algebra of transformations that
are applied at materialization time:

* :class:`ColumnRef` — pass the latest raw value through.
* :class:`RowTransform` — a row-level derived value (e.g. fare per km).
* :class:`WindowAggregate` — a per-entity trailing-window aggregate (the
  "aggregation functions ... applied on the raw streaming features").

All transformations are evaluated *as of* a timestamp and only ever read
events at or before it, which is what makes materialized features safe for
point-in-time training joins.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

_AGGREGATIONS: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.mean(v)),
    "sum": lambda v: float(np.sum(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "std": lambda v: float(np.std(v)),
    "count": lambda v: float(len(v)),
    "last": lambda v: float(v[-1]),
}


class Transformation(ABC):
    """Computes one feature value for one entity as of a timestamp."""

    @property
    @abstractmethod
    def input_columns(self) -> tuple[str, ...]:
        """Raw source columns this transformation reads (for lineage)."""

    @abstractmethod
    def evaluate(
        self, events: Sequence[dict[str, object]], as_of: float
    ) -> float | int | str | None:
        """Compute the feature value from an entity's time-sorted events.

        ``events`` contains only events with ``timestamp <= as_of`` — the
        caller enforces the point-in-time contract; implementations may
        assume it.
        """


@dataclass(frozen=True)
class ColumnRef(Transformation):
    """The raw column value from the entity's latest event."""

    column: str

    @property
    def input_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def evaluate(
        self, events: Sequence[dict[str, object]], as_of: float
    ) -> float | int | str | None:
        if not events:
            return None
        return events[-1].get(self.column)  # type: ignore[return-value]


@dataclass(frozen=True)
class RowTransform(Transformation):
    """A function of several columns of the entity's latest event.

    ``fn`` receives the column values positionally (matching ``inputs``) and
    must tolerate ``None`` or return ``None`` itself; any exception is
    treated as a definition bug and re-raised.
    """

    fn: Callable[..., float | int | str | None]
    inputs: tuple[str, ...]

    @property
    def input_columns(self) -> tuple[str, ...]:
        return self.inputs

    def evaluate(
        self, events: Sequence[dict[str, object]], as_of: float
    ) -> float | int | str | None:
        if not events:
            return None
        latest = events[-1]
        args = [latest.get(column) for column in self.inputs]
        if any(a is None for a in args):
            return None
        return self.fn(*args)


@dataclass(frozen=True)
class WindowAggregate(Transformation):
    """A trailing-window aggregate of one column.

    ``window`` is in seconds; events with
    ``as_of - window < timestamp <= as_of`` participate. NULL values are
    skipped; an empty window yields ``None`` (except ``count``, which
    yields 0).
    """

    column: str
    agg: str
    window: float

    def __post_init__(self) -> None:
        if self.agg not in _AGGREGATIONS:
            raise ValidationError(
                f"unknown aggregation {self.agg!r}; allowed: {sorted(_AGGREGATIONS)}"
            )
        if self.window <= 0:
            raise ValidationError(f"window must be positive ({self.window=})")

    @property
    def input_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def evaluate(
        self, events: Sequence[dict[str, object]], as_of: float
    ) -> float | None:
        lo = as_of - self.window
        values = [
            event[self.column]
            for event in events
            if lo < float(event["timestamp"]) <= as_of  # type: ignore[arg-type]
            and event.get(self.column) is not None
        ]
        if not values:
            return 0.0 if self.agg == "count" else None
        return _AGGREGATIONS[self.agg](np.asarray(values, dtype=float))


def available_aggregations() -> list[str]:
    """Names of the supported window aggregation functions."""
    return sorted(_AGGREGATIONS)


def aggregate_fn(name: str) -> Callable[[np.ndarray], float]:
    """The aggregation callable behind ``name``.

    The pipeline compiler's vectorized window operators apply *this exact
    function* to column-gathered arrays so compiled output stays
    byte-identical to :meth:`WindowAggregate.evaluate`.
    """
    if name not in _AGGREGATIONS:
        raise ValidationError(
            f"unknown aggregation {name!r}; allowed: {sorted(_AGGREGATIONS)}"
        )
    return _AGGREGATIONS[name]
