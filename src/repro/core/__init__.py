"""Core systems: the feature store and the embedding store.

* :mod:`repro.core.feature_store` — the classic tabular feature store
  (paper part 1): registry, dual datastore, materialization, point-in-time
  training sets, online serving.
* :mod:`repro.core.embedding_store` — embeddings as first-class citizens
  (paper parts 2-3): versioning, provenance, search, quality metrics and
  model/embedding compatibility enforcement.
* :mod:`repro.core.shared_table` — feature-hashed shared embedding
  tables (hash n-gram → row, multi-probe averaging): unbounded vocab in
  fixed memory, materializable into the bus → vecserve path.
"""

from repro.core.embedding_store import (
    EmbeddingStore,
    EmbeddingVersion,
    Provenance,
)
from repro.core.feature_store import (
    FeatureStore,
    MaterializationResult,
    TrainingSet,
)
from repro.core.feature_view import Feature, FeatureSetSpec, FeatureView
from repro.core.registry import EntityDef, FeatureRegistry
from repro.core.shared_table import SharedEmbeddingTable, char_ngrams
from repro.core.transforms import (
    ColumnRef,
    RowTransform,
    Transformation,
    WindowAggregate,
    aggregate_fn,
    available_aggregations,
)

__all__ = [
    "ColumnRef",
    "EmbeddingStore",
    "EmbeddingVersion",
    "EntityDef",
    "Feature",
    "FeatureRegistry",
    "FeatureSetSpec",
    "FeatureStore",
    "FeatureView",
    "MaterializationResult",
    "Provenance",
    "RowTransform",
    "SharedEmbeddingTable",
    "TrainingSet",
    "Transformation",
    "WindowAggregate",
    "aggregate_fn",
    "available_aggregations",
    "char_ngrams",
]
