"""Stage DAG execution.

A :class:`Pipeline` is a set of named :class:`Stage`s with dependencies.
Stages communicate through a shared context dict: each stage function
receives the context and returns a dict of outputs merged back into it.
Execution is topological (networkx); cycles and missing dependencies are
definition errors.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import PipelineError, ValidationError

StageFn = Callable[[dict[str, object]], dict[str, object] | None]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage."""

    name: str
    fn: StageFn
    depends_on: tuple[str, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class StageResult:
    """Outcome of one stage execution."""

    stage: str
    status: str  # "ok" | "failed" | "skipped"
    outputs: tuple[str, ...] = ()
    error: str | None = None


@dataclass
class Pipeline:
    """A DAG of stages executed over a shared context."""

    stages: list[Stage] = field(default_factory=list)

    def add(self, stage: Stage) -> "Pipeline":
        if any(s.name == stage.name for s in self.stages):
            raise ValidationError(f"duplicate stage name {stage.name!r}")
        self.stages.append(stage)
        return self

    def add_stage(
        self,
        name: str,
        fn: StageFn,
        depends_on: tuple[str, ...] = (),
        description: str = "",
    ) -> "Pipeline":
        """Convenience wrapper around :meth:`add`."""
        return self.add(Stage(name=name, fn=fn, depends_on=depends_on, description=description))

    def _graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        names = {s.name for s in self.stages}
        for stage in self.stages:
            graph.add_node(stage.name)
            for dependency in stage.depends_on:
                if dependency not in names:
                    raise ValidationError(
                        f"stage {stage.name!r} depends on unknown stage {dependency!r}"
                    )
                graph.add_edge(dependency, stage.name)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValidationError(f"pipeline has a cycle: {nx.find_cycle(graph)}")
        return graph

    def execution_order(self) -> list[str]:
        """Deterministic topological order (lexicographic tie-break)."""
        graph = self._graph()
        return list(nx.lexicographical_topological_sort(graph))

    def run(
        self,
        context: dict[str, object] | None = None,
        stop_on_failure: bool = True,
    ) -> tuple[dict[str, object], list[StageResult]]:
        """Execute all stages; return the final context and per-stage results.

        With ``stop_on_failure=False``, stages whose dependencies failed are
        reported as ``skipped`` and execution continues elsewhere.
        """
        context = dict(context or {})
        by_name = {s.name: s for s in self.stages}
        results: list[StageResult] = []
        failed: set[str] = set()

        for name in self.execution_order():
            stage = by_name[name]
            if any(d in failed for d in stage.depends_on):
                failed.add(name)  # transitively failed
                results.append(StageResult(stage=name, status="skipped"))
                continue
            try:
                outputs = stage.fn(context) or {}
            except Exception as exc:  # noqa: BLE001 - stage errors are data
                if stop_on_failure:
                    raise PipelineError(f"stage {name!r} failed: {exc}") from exc
                failed.add(name)
                results.append(
                    StageResult(stage=name, status="failed", error=str(exc))
                )
                continue
            if not isinstance(outputs, dict):
                raise PipelineError(
                    f"stage {name!r} returned {type(outputs).__name__}, expected dict"
                )
            context.update(outputs)
            results.append(
                StageResult(stage=name, status="ok", outputs=tuple(sorted(outputs)))
            )
        return context, results
