"""The cadence loop.

Paper section 2.2.1: "When the underlying data changes, the FS orchestrates
the updates to the features based on the user-defined cadence." The
scheduler advances a simulated clock in fixed ticks; on every tick it

1. re-materializes every feature view whose cadence is due,
2. checks per-view freshness against a staleness budget, and
3. runs any registered per-column drift monitors over the window of raw
   values that arrived since the last tick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.embedding_store import EmbeddingStore
from repro.core.feature_store import FeatureStore
from repro.errors import ValidationError
from repro.monitoring import (
    AlertLog,
    EmbeddingDriftMonitor,
    FeatureMonitor,
    FreshnessMonitor,
    MonitorConfig,
)


@dataclass(frozen=True)
class TickReport:
    """What happened during one scheduler tick.

    ``fused_groups`` / ``scans_saved`` report what the pipeline compiler's
    shared-scan fusion saved while materializing this tick's due views
    (always 0 when no plan-backed views were due).
    """

    tick: int
    now: float
    materialized_views: tuple[str, ...]
    alerts_fired: int
    fused_groups: int = 0
    scans_saved: int = 0


@dataclass
class _ColumnWatch:
    table: str
    column: str
    monitor: FeatureMonitor
    last_checked: float


@dataclass
class _EmbeddingWatch:
    store: EmbeddingStore
    name: str
    last_seen_version: int


class CadenceScheduler:
    """Drives a :class:`FeatureStore`'s cadences over simulated time."""

    def __init__(
        self,
        store: FeatureStore,
        tick_seconds: float = 600.0,
        staleness_factor: float = 3.0,
    ) -> None:
        if tick_seconds <= 0:
            raise ValidationError(f"tick_seconds must be positive ({tick_seconds=})")
        if staleness_factor <= 1.0:
            raise ValidationError(
                f"staleness_factor must exceed 1 ({staleness_factor=})"
            )
        self.store = store
        self.tick_seconds = tick_seconds
        self.staleness_factor = staleness_factor
        self.alert_log = AlertLog()
        self._column_watches: list[_ColumnWatch] = []
        self._embedding_watches: list[_EmbeddingWatch] = []
        self._freshness_monitors: dict[str, FreshnessMonitor] = {}
        self._tick_count = 0

    def watch_column(
        self,
        table: str,
        column: str,
        reference: np.ndarray,
        config: MonitorConfig | None = None,
    ) -> None:
        """Register near-real-time drift monitoring for a raw column.

        Pass a :class:`MonitorConfig` to calibrate thresholds per feature —
        heavy-tailed columns need looser outlier-rate thresholds than the
        Gaussian-ish defaults.
        """
        monitor = FeatureMonitor(
            column=f"{table}.{column}",
            reference=reference,
            log=self.alert_log,
            config=config or MonitorConfig(),
        )
        self._column_watches.append(
            _ColumnWatch(
                table=table,
                column=column,
                monitor=monitor,
                last_checked=self.store.clock.now(),
            )
        )

    def watch_embedding(self, embedding_store: EmbeddingStore, name: str) -> None:
        """Monitor an embedding name for drifting new versions.

        On every tick, if a version was registered since the last check,
        it is compared against its predecessor with the embedding drift
        monitor (section 3.1's embedding-native metrics); a drifted update
        fires an ``embedding`` alert with the version transition in the
        message.
        """
        self._embedding_watches.append(
            _EmbeddingWatch(
                store=embedding_store,
                name=name,
                last_seen_version=embedding_store.latest_version(name),
            )
        )

    def _check_embedding_watches(self, now: float) -> None:
        for watch in self._embedding_watches:
            latest = watch.store.latest_version(watch.name)
            while watch.last_seen_version < latest:
                previous_version = watch.last_seen_version
                next_version = previous_version + 1
                previous = watch.store.get(watch.name, previous_version)
                candidate = watch.store.get(watch.name, next_version)
                if (
                    previous.embedding.dim == candidate.embedding.dim
                    and previous.embedding.n > 10
                ):
                    monitor = EmbeddingDriftMonitor(
                        previous.embedding,
                        log=self.alert_log,
                        name=f"{watch.name}:v{previous_version}->v{next_version}",
                    )
                    monitor.check(candidate.embedding, timestamp=now)
                watch.last_seen_version = next_version

    def _freshness_monitor(self, view_name: str, cadence: float) -> FreshnessMonitor:
        if view_name not in self._freshness_monitors:
            self._freshness_monitors[view_name] = FreshnessMonitor(
                view_name=view_name,
                max_staleness=cadence * self.staleness_factor,
                log=self.alert_log,
            )
        return self._freshness_monitors[view_name]

    def tick(self) -> TickReport:
        """Advance the clock one tick and run all due work."""
        clock = self.store.clock
        if not hasattr(clock, "advance"):
            raise ValidationError("scheduler requires a SimClock-like clock")
        now = clock.advance(self.tick_seconds)  # type: ignore[attr-defined]
        alerts_before = len(self.alert_log)

        # Materialize every due view in one call: plan-backed views over
        # the same source table fuse into one shared scan.
        stats_before = self.store.compiler_stats
        due = self.store.views_due(now=now)
        self.store.materialize_many([view.name for view in due], as_of=now)
        materialized = [view.name for view in due]
        stats_after = self.store.compiler_stats
        fused_groups = stats_after.get("fusion_groups", 0) - stats_before.get(
            "fusion_groups", 0
        )
        scans_saved = stats_after.get("scans_saved", 0) - stats_before.get(
            "scans_saved", 0
        )

        # Freshness: compare each latest view's newest materialized row to now.
        for name in self.store.registry.view_names():
            view = self.store.registry.view(name)
            table = self.store.offline.table(view.materialized_table)
            monitor = self._freshness_monitor(view.name, view.cadence)
            monitor.observe(table.last_event_time(), now)

        # Near-real-time column drift over the window since the last check.
        for watch in self._column_watches:
            table = self.store.offline.table(watch.table)
            window = table.column_array(
                watch.column, start=watch.last_checked, end=now
            )
            if len(window) >= 20:
                watch.monitor.observe(window, timestamp=now)
                watch.last_checked = now

        self._check_embedding_watches(now)

        self._tick_count += 1
        return TickReport(
            tick=self._tick_count,
            now=now,
            materialized_views=tuple(materialized),
            alerts_fired=len(self.alert_log) - alerts_before,
            fused_groups=fused_groups,
            scans_saved=scans_saved,
        )

    def run(self, n_ticks: int) -> list[TickReport]:
        """Run several ticks; returns one report per tick."""
        if n_ticks <= 0:
            raise ValidationError(f"n_ticks must be positive ({n_ticks=})")
        return [self.tick() for __ in range(n_ticks)]
