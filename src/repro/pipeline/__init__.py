"""Pipeline orchestration: Figure 1 of the paper as executable code.

* :mod:`repro.pipeline.dag` — a typed stage DAG (ingest -> featurize ->
  train -> deploy -> monitor -> patch) with topological execution and
  per-stage results.
* :mod:`repro.pipeline.scheduler` — the cadence loop: advances a simulated
  clock, re-materializes feature views that are due, runs freshness and
  drift monitors, and collects alerts.
"""

from repro.pipeline.dag import Pipeline, Stage, StageResult
from repro.pipeline.scheduler import CadenceScheduler, TickReport

__all__ = [
    "CadenceScheduler",
    "Pipeline",
    "Stage",
    "StageResult",
    "TickReport",
]
