#!/usr/bin/env python
"""Perf-trajectory regression gate over the tracked benchmark documents.

Every perf-critical subsystem ships a bench that writes a JSON document to
``benchmarks/results/`` (A4 columnar engine, E17 ingestion bus, E18 vector
serving, E19 codecs, telemetry overhead, E20 pipeline compiler, E21
network serving plane, E22 replicated cluster plane, E23 selector I/O
substrate). This tool
folds the headline numbers of all of them into one ledger —
``benchmarks/results/TRAJECTORY.json`` — and enforces a floor (or ceiling)
on each, so a future PR that quietly regresses a speedup or breaks a
parity bit fails loudly instead of rotting in an unread JSON file.

Two modes::

    python tools/check_trajectory.py            # gate: thresholds only
    python tools/check_trajectory.py --update   # refresh TRAJECTORY.json

``check`` re-extracts each metric from its source ``BENCH_*.json`` and
verifies it clears the threshold *declared in this file* — thresholds are
code, values are data. ``--update`` rewrites the ledger from the current
source documents; ``tests/test_trajectory.py`` keeps the committed ledger
in sync with the committed sources.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import Callable

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
TRAJECTORY_PATH = RESULTS_DIR / "TRAJECTORY.json"


@dataclasses.dataclass(frozen=True)
class Metric:
    """One gated number: how to pull it from the doc, and its bound."""

    extract: Callable[[dict], float]
    min: float | None = None
    max: float | None = None

    def bound(self) -> tuple[str, float]:
        if self.min is not None:
            return "min", self.min
        assert self.max is not None
        return "max", self.max

    def violation(self, value: float) -> str | None:
        if self.min is not None and value < self.min:
            return f"{value} < min {self.min}"
        if self.max is not None and value > self.max:
            return f"{value} > max {self.max}"
        return None


def _smallest_size(doc: dict) -> dict:
    """The smallest measured size in an A4-style ``sizes`` document —
    the one every smoke run refreshes."""
    return doc["sizes"][min(doc["sizes"], key=int)]


# The ledger. Thresholds are intentionally *looser* than the day-one
# numbers: the gate catches order-of-magnitude rot and broken parity,
# not machine-to-machine timing noise.
BENCHES: dict[str, dict] = {
    "columnar_join": {
        "source": "BENCH_columnar_join.json",
        "metrics": {
            "pit_join_speedup": Metric(
                lambda d: _smallest_size(d)["build_training_set"]["speedup"],
                min=4.0,
            ),
            "pit_join_parity": Metric(
                lambda d: float(
                    _smallest_size(d)["build_training_set"]["parity_nan_equal"]
                ),
                min=1.0,
            ),
        },
    },
    "ingestion_bus": {
        "source": "BENCH_ingestion_bus.json",
        "metrics": {
            "group_vs_per_record_speedup": Metric(
                lambda d: d["group_vs_per_record_speedup"], min=5.0
            ),
            "replay_parity": Metric(
                lambda d: float(d["replay"]["parity"]), min=1.0
            ),
        },
    },
    "vector_serving": {
        "source": "BENCH_vector_serving.json",
        "metrics": {
            "recall_at_10_online": Metric(
                lambda d: d["recall"]["recall_at_10_online"], min=0.95
            ),
            "queries_failed": Metric(
                lambda d: float(d["availability"]["queries_failed"]), max=0.0
            ),
        },
    },
    "compressed_vectors": {
        "source": "BENCH_compressed_vectors.json",
        "metrics": {
            "int8_memory_reduction": Metric(
                lambda d: d["tradeoff"]["codecs"]["int8"][
                    "memory_reduction_vs_raw"
                ],
                min=8.0,
            ),
            "pq_memory_reduction": Metric(
                lambda d: d["tradeoff"]["codecs"]["pq"][
                    "memory_reduction_vs_raw"
                ],
                min=32.0,
            ),
            "pq_recall_at_10_online": Metric(
                lambda d: d["tradeoff"]["codecs"]["pq"]["recall_at_10_online"],
                min=0.9,
            ),
        },
    },
    "telemetry_overhead": {
        "source": "BENCH_telemetry_overhead.json",
        "metrics": {
            "cached_vs_raw_counter_ratio": Metric(
                lambda d: d["registry_cached_inc_ns"]
                / d["raw_counter_inc_ns"],
                max=3.0,
            ),
        },
    },
    "pipeline_compiler": {
        "source": "BENCH_pipeline_compiler.json",
        "metrics": {
            "fused_vs_naive": Metric(
                lambda d: d["materialization"]["fused_vs_naive"], min=4.0
            ),
            "materialization_parity": Metric(
                lambda d: float(d["materialization"]["parity"]), min=1.0
            ),
            "pushdown_pruned_fraction": Metric(
                lambda d: d["pushdown"]["pruned_fraction"], min=0.1
            ),
            "asof_join_parity": Metric(
                lambda d: float(d["asof_join"]["parity"]), min=1.0
            ),
        },
    },
    "network_serving": {
        "source": "BENCH_network_serving.json",
        "metrics": {
            "high_priority_success": Metric(
                lambda d: d["overload"]["by_priority"]["high"][
                    "success_rate"
                ],
                min=0.99,
            ),
            "overload_shed_rate": Metric(
                lambda d: d["overload"]["shed_rate"], min=0.001
            ),
            "drain_dropped_inflight": Metric(
                lambda d: float(d["drain"]["dropped_inflight"]), max=0.0
            ),
            "drain_leaked_threads": Metric(
                lambda d: float(d["drain"]["leaked_threads"]), max=0.0
            ),
        },
    },
    "cluster": {
        "source": "BENCH_cluster.json",
        "metrics": {
            "replication_parity": Metric(
                lambda d: float(d["replication"]["replication_parity"]),
                min=1.0,
            ),
            "acked_writes_lost": Metric(
                lambda d: float(d["failover"]["acked_writes_lost"]), max=0.0
            ),
            "failover_first_read_ms": Metric(
                lambda d: d["failover"]["failover_first_read_ms"], max=5000.0
            ),
            "stale_read_served_in_window": Metric(
                lambda d: float(
                    d["failover"]["stale_read_served_in_window"]
                ),
                min=1.0,
            ),
            "failover_leaked_threads": Metric(
                lambda d: float(d["failover"]["leaked_threads"]), max=0.0
            ),
        },
    },
    "io_substrate": {
        "source": "BENCH_io_substrate.json",
        "metrics": {
            # scale-independent: held every connection it opened (the
            # absolute >=5000 bar is enforced by the bench's own
            # check_acceptance at default scale)
            "selector_connections_held_ratio": Metric(
                lambda d: d["connection_scale"]["selector"][
                    "concurrent_connections"
                ]
                / d["connection_scale"]["selector"]["connections"],
                min=1.0,
            ),
            "selector_threads_at_peak": Metric(
                lambda d: float(
                    d["connection_scale"]["selector"]["threads_at_peak"]
                ),
                max=32.0,
            ),
            "baseline_threads_per_connection": Metric(
                lambda d: d["connection_scale"]["baseline"][
                    "threads_per_connection"
                ],
                min=0.9,
            ),
            "selector_leaked_fds": Metric(
                lambda d: float(
                    d["connection_scale"]["selector"]["leaked_fds"]
                ),
                max=0.0,
            ),
            "socket_replication_parity": Metric(
                lambda d: float(
                    d["socket_replication"]["replication_parity"]
                ),
                min=1.0,
            ),
            "socket_acked_writes_lost": Metric(
                lambda d: float(d["socket_failover"]["acked_writes_lost"]),
                max=0.0,
            ),
            "socket_failover_leaked_threads": Metric(
                lambda d: float(d["socket_failover"]["leaked_threads"]),
                max=0.0,
            ),
            "socket_failover_leaked_fds": Metric(
                lambda d: float(d["socket_failover"]["leaked_fds"]),
                max=0.0,
            ),
        },
    },
}


def extract(results_dir: pathlib.Path = RESULTS_DIR) -> tuple[dict, list[str]]:
    """Pull every gated metric from the source documents.

    Returns ``(ledger, failures)`` where the ledger mirrors the
    TRAJECTORY.json shape and failures lists missing/unreadable sources
    and threshold violations.
    """
    ledger: dict[str, dict] = {}
    failures: list[str] = []
    for bench, spec in BENCHES.items():
        source = results_dir / spec["source"]
        if not source.exists():
            failures.append(f"{bench}: missing source {spec['source']}")
            continue
        doc = json.loads(source.read_text())
        metrics: dict[str, dict] = {}
        for name, metric in spec["metrics"].items():
            try:
                value = round(float(metric.extract(doc)), 4)
            except (KeyError, TypeError, ZeroDivisionError) as exc:
                failures.append(
                    f"{bench}.{name}: cannot extract from "
                    f"{spec['source']} ({exc!r})"
                )
                continue
            kind, threshold = metric.bound()
            metrics[name] = {"value": value, kind: threshold}
            violation = metric.violation(value)
            if violation is not None:
                failures.append(f"{bench}.{name}: {violation}")
        ledger[bench] = {"source": spec["source"], "metrics": metrics}
    return ledger, failures


def check(results_dir: pathlib.Path = RESULTS_DIR) -> list[str]:
    """The gate: every tracked metric clears its threshold."""
    __, failures = extract(results_dir)
    return failures


def update(
    results_dir: pathlib.Path = RESULTS_DIR,
    path: pathlib.Path = TRAJECTORY_PATH,
) -> pathlib.Path:
    """Refresh TRAJECTORY.json from the current source documents."""
    ledger, failures = extract(results_dir)
    if failures:
        raise SystemExit(
            "refusing to record a failing trajectory:\n  "
            + "\n  ".join(failures)
        )
    document = {
        "comment": (
            "Perf-trajectory ledger folded from the tracked BENCH_*.json "
            "documents. Values are data; thresholds are declared in "
            "tools/check_trajectory.py. Refresh with "
            "`python tools/check_trajectory.py --update`."
        ),
        "benches": ledger,
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite TRAJECTORY.json from the current BENCH_*.json files",
    )
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=RESULTS_DIR,
        help="directory holding the BENCH_*.json documents",
    )
    args = parser.parse_args(argv)
    if args.update:
        path = update(args.results_dir)
        print(f"wrote {path}")
        return 0
    failures = check(args.results_dir)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    count = sum(len(spec["metrics"]) for spec in BENCHES.values())
    print(f"trajectory ok: {count} metrics across {len(BENCHES)} benches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
