#!/usr/bin/env python
"""Import-DAG lint: enforce the runtime-kernel layering rules.

The unified runtime refactor gave the repo an explicit layer diagram
(see DESIGN.md, "The runtime kernel"):

    errors / clock                 (foundation)
    codec | runtime                (compression kernels; lifecycle, telemetry)
    storage / core / index / ...   (domain substrate)
    serving | bus | vecserve | streaming | monitoring   (the planes)
    net | cluster                  (the top of the DAG, mutually independent)

Seven rules keep it a DAG:

1. **The runtime imports nothing above it.** Modules under
   ``repro.runtime`` may import only the stdlib, numpy, ``repro.errors``,
   ``repro.clock`` and other ``repro.runtime`` modules. The kernel must
   be loadable by any plane without dragging a plane in.
2. **Planes never import each other's internals.** A module in plane A
   may import plane B only through its package root
   (``from repro.bus import Sink``), never a submodule
   (``from repro.bus.sinks import Sink``) — the package root *is* the
   plane's public API. (This is the rule that forbids the old
   ``repro.vecserve → repro.serving.faults`` upward import; the shared
   machinery lives in ``repro.runtime.resilience`` now.)
3. **The codec plane imports nothing above the foundation.** Modules
   under ``repro.codec`` may import only the stdlib, numpy,
   ``repro.errors`` and other ``repro.codec`` modules — so any layer
   (vecserve snapshots, the embedding store, offline tooling) can use
   the compression substrate without an upward edge.
4. **The compiler sits on core + storage, below every plane.** Modules
   under ``repro.compiler`` may import only the stdlib, numpy,
   ``repro.errors``, ``repro.clock``, ``repro.core``, ``repro.storage``
   and other ``repro.compiler`` modules — never a plane. (Core reaches
   compiled behaviour through duck-typed methods on the plan object a
   view carries, so there is no ``repro.core → repro.compiler`` edge
   either; the DAG stays acyclic.)
5. **The network plane is the top of the DAG.** Modules under
   ``repro.net`` may import only the stdlib, numpy, ``repro.errors``,
   ``repro.clock``, ``repro.runtime``, ``repro.serving``,
   ``repro.vecserve`` and ``repro.datagen`` (the loadgen's workload
   substrate) — and **nothing** else in ``repro`` may import
   ``repro.net`` back. Only benchmarks, examples and tests sit above
   the network surface; a library module depending on the HTTP front
   end would invert the whole diagram.
6. **The cluster plane is also a top of the DAG.** Modules under
   ``repro.cluster`` may import only the stdlib, numpy, ``repro.errors``,
   ``repro.clock``, ``repro.runtime``, ``repro.storage``, ``repro.bus``
   and ``repro.serving`` — and **nothing** else in ``repro`` may import
   ``repro.cluster`` back. In particular ``repro.net`` and
   ``repro.cluster`` stay mutually independent: the single-process
   network surface and the multi-node replication plane compose in
   application code (a node can *own* a server), never by importing
   each other.

7. **The I/O substrate stays in the kernel, for the socket planes.**
   ``repro.runtime.io`` (the selector loop) is infrastructure for the
   two planes that own real sockets: only ``repro.net``,
   ``repro.cluster`` and the runtime itself may import it. It is
   deliberately *not* re-exported from ``repro.runtime``'s package
   root — a storage or serving module reaching for an event loop is a
   design smell this rule turns into a lint failure.

``if TYPE_CHECKING:`` blocks are exempt — annotations may name
cross-plane types without creating a runtime edge.

Run: ``python tools/check_layering.py [--src PATH]``. Exit 0 when clean,
1 with one line per violation otherwise. ``tests/test_layering.py`` runs
the same check as part of tier-1.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: packages whose submodules are private to the package ("planes")
PLANES = (
    "serving",
    "bus",
    "vecserve",
    "streaming",
    "monitoring",
    "compiler",
    "net",
    "cluster",
)

#: top-level roots repro.runtime may import at runtime
RUNTIME_ALLOWED_ROOTS = {
    "repro.errors",
    "repro.clock",
    "repro.runtime",
    "numpy",
}

#: top-level roots repro.codec may import at runtime (rule 3: the codec
#: plane sits at the bottom of the DAG, beside the runtime kernel)
CODEC_ALLOWED_ROOTS = {
    "repro.errors",
    "repro.codec",
    "numpy",
}

#: top-level roots repro.compiler may import at runtime (rule 4: the
#: pipeline compiler lowers plans onto core/storage kernels and must be
#: importable without dragging in any serving/monitoring plane)
COMPILER_ALLOWED_ROOTS = {
    "repro.errors",
    "repro.clock",
    "repro.compiler",
    "repro.core",
    "repro.storage",
    "numpy",
}

#: top-level roots repro.net may import at runtime (rule 5: the network
#: surface mounts the serving/vector planes over the runtime kernel and
#: reuses the datagen workload substrate for its loadgen)
NET_ALLOWED_ROOTS = {
    "repro.errors",
    "repro.clock",
    "repro.runtime",
    "repro.serving",
    "repro.vecserve",
    "repro.datagen",
    "repro.net",
    "numpy",
}

#: top-level roots repro.cluster may import at runtime (rule 6: the
#: cluster plane replicates the bus log across store/serving stacks over
#: the runtime kernel; it sits at the top of the DAG beside repro.net)
CLUSTER_ALLOWED_ROOTS = {
    "repro.errors",
    "repro.clock",
    "repro.runtime",
    "repro.storage",
    "repro.bus",
    "repro.serving",
    "repro.cluster",
    "numpy",
}


@dataclass(frozen=True)
class ImportEdge:
    """One runtime import statement: importer module → imported module."""

    importer: str  # dotted module name, e.g. repro.bus.sinks
    imported: str  # dotted target, e.g. repro.streaming
    lineno: int


@dataclass(frozen=True)
class Violation:
    edge: ImportEdge
    rule: str

    def __str__(self) -> str:
        return (
            f"{self.edge.importer}:{self.edge.lineno}: "
            f"imports {self.edge.imported} — {self.rule}"
        )


def _is_type_checking_test(test: ast.expr) -> bool:
    """Recognize ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _ImportCollector(ast.NodeVisitor):
    """Collect runtime import edges, skipping TYPE_CHECKING blocks."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.edges: list[ImportEdge] = []

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            # Annotations-only imports: not a runtime edge. Still walk
            # the else branch (it executes at runtime).
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.edges.append(ImportEdge(self.module, alias.name, node.lineno))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # resolve relative imports against this module
            parts = self.module.split(".")
            base = parts[: len(parts) - node.level]
            target = ".".join(base + ([node.module] if node.module else []))
        else:
            target = node.module or ""
        if target:
            self.edges.append(ImportEdge(self.module, target, node.lineno))


def module_name(path: Path, src: Path) -> str:
    relative = path.relative_to(src).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def collect_edges(src: Path) -> list[ImportEdge]:
    edges: list[ImportEdge] = []
    for path in sorted((src / "repro").rglob("*.py")):
        name = module_name(path, src)
        tree = ast.parse(path.read_text(), filename=str(path))
        collector = _ImportCollector(name)
        collector.visit(tree)
        edges.extend(collector.edges)
    return edges


def _plane_of(module: str) -> str | None:
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro" and parts[1] in PLANES:
        return parts[1]
    return None


def check_edges(edges: list[ImportEdge]) -> list[Violation]:
    violations: list[Violation] = []
    for edge in edges:
        # Rule 1: the runtime kernel sits at the bottom of the DAG.
        if edge.importer.startswith("repro.runtime"):
            allowed = not edge.imported.startswith("repro") or any(
                edge.imported == root or edge.imported.startswith(root + ".")
                for root in RUNTIME_ALLOWED_ROOTS
            )
            if not allowed:
                violations.append(
                    Violation(
                        edge,
                        "repro.runtime may import only the stdlib, numpy, "
                        "repro.errors and repro.clock",
                    )
                )
                continue
        # Rule 3: the codec plane sits at the bottom of the DAG.
        if edge.importer.startswith("repro.codec"):
            allowed = not edge.imported.startswith("repro") or any(
                edge.imported == root or edge.imported.startswith(root + ".")
                for root in CODEC_ALLOWED_ROOTS
            )
            if not allowed:
                violations.append(
                    Violation(
                        edge,
                        "repro.codec may import only the stdlib, numpy "
                        "and repro.errors",
                    )
                )
                continue
        # Rule 4: the compiler sits on core + storage, below every plane.
        if edge.importer.startswith("repro.compiler"):
            allowed = not edge.imported.startswith("repro") or any(
                edge.imported == root or edge.imported.startswith(root + ".")
                for root in COMPILER_ALLOWED_ROOTS
            )
            if not allowed:
                violations.append(
                    Violation(
                        edge,
                        "repro.compiler may import only the stdlib, numpy, "
                        "repro.errors, repro.clock, repro.core and "
                        "repro.storage",
                    )
                )
                continue
        # Rule 5a: the network plane's own downward imports.
        if edge.importer.startswith("repro.net"):
            allowed = not edge.imported.startswith("repro") or any(
                edge.imported == root or edge.imported.startswith(root + ".")
                for root in NET_ALLOWED_ROOTS
            )
            if not allowed:
                violations.append(
                    Violation(
                        edge,
                        "repro.net may import only the stdlib, numpy, "
                        "repro.errors, repro.clock, repro.runtime, "
                        "repro.serving, repro.vecserve and repro.datagen",
                    )
                )
                continue
        # Rule 5b: nothing inside repro imports the network plane back.
        elif edge.imported == "repro.net" or edge.imported.startswith(
            "repro.net."
        ):
            violations.append(
                Violation(
                    edge,
                    "repro.net is the top of the DAG — only benchmarks, "
                    "examples and tests may import it",
                )
            )
            continue
        # Rule 6a: the cluster plane's own downward imports.
        if edge.importer.startswith("repro.cluster"):
            allowed = not edge.imported.startswith("repro") or any(
                edge.imported == root or edge.imported.startswith(root + ".")
                for root in CLUSTER_ALLOWED_ROOTS
            )
            if not allowed:
                violations.append(
                    Violation(
                        edge,
                        "repro.cluster may import only the stdlib, numpy, "
                        "repro.errors, repro.clock, repro.runtime, "
                        "repro.storage, repro.bus and repro.serving",
                    )
                )
                continue
        # Rule 6b: nothing inside repro imports the cluster plane back.
        elif edge.imported == "repro.cluster" or edge.imported.startswith(
            "repro.cluster."
        ):
            violations.append(
                Violation(
                    edge,
                    "repro.cluster is a top of the DAG — only benchmarks, "
                    "examples and tests may import it",
                )
            )
            continue
        # Rule 7: the selector substrate is reserved for the kernel and
        # the two socket-facing planes.
        if edge.imported == "repro.runtime.io" or edge.imported.startswith(
            "repro.runtime.io."
        ):
            allowed = edge.importer.startswith(
                ("repro.runtime", "repro.net", "repro.cluster")
            )
            if not allowed:
                violations.append(
                    Violation(
                        edge,
                        "repro.runtime.io is kernel I/O infrastructure — "
                        "only repro.net, repro.cluster and the runtime "
                        "itself may import it",
                    )
                )
                continue
        # Rule 2: cross-plane imports only via the package root.
        importer_plane = _plane_of(edge.importer)
        imported_plane = _plane_of(edge.imported)
        if (
            imported_plane is not None
            and imported_plane != importer_plane
            and edge.imported != f"repro.{imported_plane}"
        ):
            violations.append(
                Violation(
                    edge,
                    f"cross-plane import must go through the package root "
                    f"repro.{imported_plane}",
                )
            )
    return violations


def run(src: Path) -> list[Violation]:
    return check_edges(collect_edges(src))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--src",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "src",
        help="source root containing the repro package (default: ../src)",
    )
    args = parser.parse_args(argv)
    violations = run(args.src)
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} layering violation(s)")
        return 1
    print("layering: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
